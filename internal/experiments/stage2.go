package experiments

import (
	"fmt"

	"github.com/atlas-slicing/atlas/internal/bo"
	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

func init() {
	Register("fig16", fig16)
	Register("fig17", fig17)
	Register("fig18", fig18)
	Register("fig19", fig19)
}

// fig16 reproduces Fig. 16: the offline training progress — average
// resource usage and average QoE per iteration.
func fig16(p Params) *Result {
	l := p.Lab
	res := l.Offline(1, l.SLA)
	check := checkpoints(len(res.UsageCurve), 10)
	r := &Result{ID: "fig16", Title: "Offline training progress (per-iteration batch means)"}
	r.Header = make([]string, len(check))
	for i, c := range check {
		r.Header[i] = fmt.Sprintf("it%d", c)
	}
	usage := make([]float64, len(check))
	for i, c := range check {
		usage[i] = 100 * res.UsageCurve[c]
	}
	r.AddRow("usage (%)", usage...)
	r.AddRow("QoE", at(res.QoECurve, check)...)
	r.AddRow("lambda", at(res.LambdaCurve, check)...)
	r.AddNote("shape: usage decreases while QoE holds near E=0.9, then both converge (paper Fig. 16)")
	r.AddNote("best: usage=%.1f%% qoe=%.3f cfg=%v", 100*res.BestUsage, res.BestQoE, res.BestConfig)
	return r
}

// offlineVariant trains stage 2 with a surrogate/acquisition variant.
func offlineVariant(l *Lab, useGP bool, acq bo.Acquisition, salt int64) *core.OfflineResult {
	opts := core.DefaultOfflineOptions()
	opts.Iters = scaled(l.Budget.Stage2Iters, l.Budget.SweepScale)
	opts.Explore = scaled(l.Budget.Stage2Explore, l.Budget.SweepScale)
	opts.Batch = l.Budget.Batch
	opts.Pool = l.Budget.Pool
	opts.UseGP = useGP
	opts.GPAcq = acq
	return core.NewOfflineTrainer(l.Augmented(), opts).Run(mathx.NewRNG(l.rng(salt)))
}

// fig17 reproduces Fig. 17: the best (QoE, resource usage) found by each
// offline method.
func fig17(p Params) *Result {
	l := p.Lab
	r := &Result{ID: "fig17", Title: "Performance of offline methods (best feasible configuration)",
		Header: []string{"usage%", "QoE"}}

	ours := l.Offline(1, l.SLA)
	r.AddRow("Ours", 100*ours.BestUsage, ours.BestQoE)

	for _, v := range []struct {
		name string
		acq  bo.Acquisition
	}{
		{"GP-EI", bo.EI{}},
		{"GP-PI", bo.PI{}},
		{"GP-UCB", bo.LCB{Beta: 4}},
	} {
		res := offlineVariant(l, true, v.acq, int64(2000+len(v.name)))
		r.AddRow(v.name, 100*res.BestUsage, res.BestQoE)
	}

	// DLDA selects offline from its grid-trained network.
	dlda := l.NewDLDA(1, l.SLA, 2010)
	cfg := dlda.Next(0, mathx.NewRNG(l.rng(2011)))
	qoe := core.NewOfflineTrainer(l.Augmented(), core.DefaultOfflineOptions()).MeasureQoE(cfg)
	r.AddRow("DLDA", 100*l.Space.Usage(cfg), qoe)

	r.AddNote("paper: ours 19.81%%/0.905; DLDA 26.87%%/0.98; GP methods ≤37.62%% usage at ≥0.92 QoE")
	r.AddNote("shape: ours meets E=0.9 with the least resources")
	return r
}

// fig18 reproduces Fig. 18: the Pareto boundary (usage vs delivered QoE)
// under different availability requirements E.
func fig18(p Params) *Result {
	l := p.Lab
	r := &Result{ID: "fig18", Title: "Pareto boundary under different availability E (usage% / QoE)",
		Header: []string{"oursU%", "oursQ", "dldaU%", "dldaQ", "gpeiU%", "gpeiQ"}}
	for i, e := range []float64{0.5, 0.7, 0.8, 0.9} {
		sla := slicing.SLA{ThresholdMs: l.SLA.ThresholdMs, Availability: e}
		ours := l.Offline(1, sla)

		dlda := l.NewDLDA(1, sla, int64(2100+i))
		cfgD := dlda.Next(0, mathx.NewRNG(l.rng(int64(2110+i))))
		trainer := core.NewOfflineTrainer(l.Augmented(), withSLA(core.DefaultOfflineOptions(), sla))
		qD := trainer.MeasureQoE(cfgD)

		gpei := offlineVariantSLA(l, sla, bo.EI{}, int64(2120+i))

		r.AddRow(fmt.Sprintf("E=%.2f", e),
			100*ours.BestUsage, ours.BestQoE,
			100*l.Space.Usage(cfgD), qD,
			100*gpei.BestUsage, gpei.BestQoE)
	}
	r.AddNote("shape: ours dominates (least usage per satisfied E); DLDA coarse due to grid dataset (paper Fig. 18)")
	return r
}

func withSLA(opts core.OfflineOptions, sla slicing.SLA) core.OfflineOptions {
	opts.SLA = sla
	return opts
}

func offlineVariantSLA(l *Lab, sla slicing.SLA, acq bo.Acquisition, salt int64) *core.OfflineResult {
	opts := core.DefaultOfflineOptions()
	opts.SLA = sla
	opts.Iters = scaled(l.Budget.Stage2Iters, l.Budget.SweepScale)
	opts.Explore = scaled(l.Budget.Stage2Explore, l.Budget.SweepScale)
	opts.Batch = l.Budget.Batch
	opts.Pool = l.Budget.Pool
	opts.UseGP = true
	opts.GPAcq = acq
	return core.NewOfflineTrainer(l.Augmented(), opts).Run(mathx.NewRNG(l.rng(salt)))
}

// fig19 reproduces Fig. 19: average resource usage under different
// latency thresholds Y, ours vs DLDA.
func fig19(p Params) *Result {
	l := p.Lab
	r := &Result{ID: "fig19", Title: "Average usage under different latency thresholds (usage%)",
		Header: []string{"ours", "dlda"}}
	for i, y := range []float64{300, 400, 500} {
		sla := slicing.SLA{ThresholdMs: y, Availability: l.SLA.Availability}
		ours := l.Offline(1, sla)
		dlda := l.NewDLDA(1, sla, int64(2200+i))
		cfgD := dlda.Next(0, mathx.NewRNG(l.rng(int64(2210+i))))
		r.AddRow(fmt.Sprintf("Y=%.0fms", y), 100*ours.BestUsage, 100*l.Space.Usage(cfgD))
	}
	r.AddNote("shape: ours uses less everywhere; the gap shrinks as Y loosens because the connectivity floor dominates (paper Fig. 19)")
	return r
}
