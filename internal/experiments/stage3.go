package experiments

import (
	"math/rand"

	"fmt"

	"github.com/atlas-slicing/atlas/internal/baselines"
	"github.com/atlas-slicing/atlas/internal/bo"
	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

func init() {
	Register("table5", table5)
	Register("fig20", fig20)
	Register("fig21", fig21)
	Register("fig22", fig22)
	Register("fig23", fig23)
	Register("fig24", fig24)
	Register("fig25", fig25)
	Register("fig26", fig26)
}

// onlineMethods builds the four online methods of §8.3 for a scenario.
func onlineMethods(l *Lab, traffic int, sla slicing.SLA, salt int64) []slicing.OnlinePolicy {
	return []slicing.OnlinePolicy{
		baselines.NewDirectBO(l.Space, sla, traffic),
		baselines.NewVirtualEdge(l.Space, sla, traffic),
		l.NewDLDA(traffic, sla, salt),
		l.NewAtlasLearner(traffic, sla, salt, nil),
	}
}

// runAll executes every method on the real network for the scenario,
// memoizing by (scenario, iters, salt): Table 5 and Figs. 20-21 report
// the same runs, exactly as the paper does.
func runAll(l *Lab, traffic int, sla slicing.SLA, iters int, salt int64) []*baselines.RunResult {
	key := fmt.Sprintf("%s-i%d-s%d", scenarioKey(traffic, sla), iters, salt)
	if cached, ok := l.runs[key]; ok {
		return cached
	}
	oracle := l.Oracle(traffic, sla)
	var out []*baselines.RunResult
	for i, m := range onlineMethods(l, traffic, sla, salt) {
		out = append(out, baselines.RunOnline(m, l.Real, l.Space, sla, traffic, iters, oracle, l.rng(salt+int64(10*i))))
	}
	l.runs[key] = out
	return out
}

// table5 reproduces Table 5: average usage and QoE regret of online
// learning under the four methods.
func table5(p Params) *Result {
	l := p.Lab
	runs := runAll(l, 1, l.SLA, p.Budget.OnlineIters, 3000)
	oracle := l.Oracle(1, l.SLA)

	r := &Result{ID: "table5", Title: "Details of online learning under different methods",
		Header: []string{"usageReg%", "qoeReg", "offQueries"}}
	for _, run := range runs {
		off := 0.0
		if run.Name == "Atlas" {
			off = float64(core.DefaultOnlineOptions().N * p.Budget.OnlineIters)
		}
		if run.Name == "DLDA" {
			// DLDA consumed the offline grid dataset.
			off = float64(len(l.GridTraces(1)))
		}
		r.AddRow(run.Name, 100*run.Regret.AvgUsageRegret(), run.Regret.AvgQoERegret(), off)
	}
	r.AddNote("oracle: usage=%.1f%% qoe=%.3f cfg=%v", 100*oracle.Usage, oracle.QoE, oracle.Config)
	r.AddNote("paper: Baseline 35.83/0.31, VirtualEdge 16.06/0.34, DLDA 8.79/0.54, Ours 3.17/0.077")
	r.AddNote("shape: ours lowest on both regrets (paper: 63.9%% and 85.7%% reduction vs DLDA)")
	return r
}

// fig20 reproduces Fig. 20: online average resource usage vs iteration.
func fig20(p Params) *Result {
	return onlineProgress(p, "fig20", "Online training progress: avg resource usage (%)", func(run *baselines.RunResult) []float64 {
		return cumMean(run.Usages, 100)
	})
}

// fig21 reproduces Fig. 21: online average QoE vs iteration.
func fig21(p Params) *Result {
	return onlineProgress(p, "fig21", "Online training progress: avg QoE", func(run *baselines.RunResult) []float64 {
		return cumMean(run.QoEs, 1)
	})
}

func onlineProgress(p Params, id, title string, series func(*baselines.RunResult) []float64) *Result {
	l := p.Lab
	runs := runAll(l, 1, l.SLA, p.Budget.OnlineIters, 3000)
	r := &Result{ID: id, Title: title}
	check := checkpoints(p.Budget.OnlineIters, 10)
	r.Header = make([]string, len(check))
	for i, c := range check {
		r.Header[i] = fmt.Sprintf("it%d", c)
	}
	for _, run := range runs {
		r.AddRow(run.Name, at(series(run), check)...)
	}
	r.AddNote("shape: Atlas converges near the optimum while keeping QoE around E (paper Figs. 20-21)")
	return r
}

// cumMean returns the running mean of xs scaled by s.
func cumMean(xs []float64, s float64) []float64 {
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		out[i] = s * sum / float64(i+1)
	}
	return out
}

// fig22 reproduces Fig. 22: the footprint of Atlas under different
// acquisition functions.
func fig22(p Params) *Result {
	l := p.Lab
	oracle := l.Oracle(1, l.SLA)
	variants := []struct {
		name   string
		mutate func(*core.OnlineOptions)
	}{
		{"PI", func(o *core.OnlineOptions) { o.Acq = bo.PI{} }},
		{"EI", func(o *core.OnlineOptions) { o.Acq = bo.EI{} }},
		{"GP-UCB", func(o *core.OnlineOptions) { o.Schedule = bo.GPUCBSchedule{Delta: 0.1} }},
		{"cRGP-UCB", nil},
	}
	r := &Result{ID: "fig22", Title: "Footprint under acquisition functions",
		Header: []string{"meetQoE", "meanUsage%", "meanQoE", "usageReg%", "qoeReg"}}
	for i, v := range variants {
		learner := l.NewAtlasLearner(1, l.SLA, int64(3200+i), v.mutate)
		run := baselines.RunOnline(learner, l.Real, l.Space, l.SLA, 1, p.Budget.OnlineIters, oracle, l.rng(int64(3210+i)))
		meet := 0
		for _, q := range run.QoEs {
			if q >= l.SLA.Availability {
				meet++
			}
		}
		r.AddRow(v.name, float64(meet)/float64(len(run.QoEs)),
			100*mathx.Vector(run.Usages).Mean(), mathx.Vector(run.QoEs).Mean(),
			100*run.Regret.AvgUsageRegret(), run.Regret.AvgQoERegret())
	}
	r.AddNote("shape: cRGP-UCB explores lowest-usage actions near the QoE requirement; GP-UCB comparable but over-provisions (paper Fig. 22)")
	return r
}

// fig23 reproduces Fig. 23: the online-model ablation — GP residual
// (ours), BNN residual, continually trained BNN, and no offline
// acceleration.
func fig23(p Params) *Result {
	l := p.Lab
	oracle := l.Oracle(1, l.SLA)
	variants := []struct {
		name   string
		mutate func(*core.OnlineOptions)
	}{
		{"Ours", nil},
		{"BNN", func(o *core.OnlineOptions) { o.Model = core.ResidualBNN }},
		{"BNN-Cont'd", func(o *core.OnlineOptions) { o.Model = core.ContinueBNN }},
		{"No Offline Acc.", func(o *core.OnlineOptions) { o.OfflineAccel = false }},
	}
	r := &Result{ID: "fig23", Title: "Online models ablation (regret)",
		Header: []string{"usageReg%", "qoeReg"}}
	for i, v := range variants {
		learner := l.NewAtlasLearner(1, l.SLA, int64(3300+i), v.mutate)
		run := baselines.RunOnline(learner, l.Real, l.Space, l.SLA, 1, p.Budget.OnlineIters, oracle, l.rng(int64(3310+i)))
		r.AddRow(v.name, 100*run.Regret.AvgUsageRegret(), run.Regret.AvgQoERegret())
	}
	r.AddNote("paper: BNN regrets +107.6%%/+96.5%% vs ours; BNN-Cont'd QoE regret soars; no offline acc. +63.5%% usage regret")
	return r
}

// fig24 reproduces Fig. 24: the impact of removing individual stages.
func fig24(p Params) *Result {
	l := p.Lab
	oracle := l.Oracle(1, l.SLA)
	iters := p.Budget.OnlineIters

	r := &Result{ID: "fig24", Title: "Impact of individual components",
		Header: []string{"meanUsage%", "meanQoE", "tailQoE"}}

	// Full system.
	full := l.NewAtlasLearner(1, l.SLA, 3400, nil)
	addFootprint(r, "Ours", baselines.RunOnline(full, l.Real, l.Space, l.SLA, 1, iters, oracle, l.rng(3401)))

	// No stage 1: offline training and online learning use the
	// uncalibrated simulator.
	{
		opts := core.DefaultOfflineOptions()
		opts.Iters = scaled(l.Budget.Stage2Iters, l.Budget.SweepScale)
		opts.Explore = scaled(l.Budget.Stage2Explore, l.Budget.SweepScale)
		opts.Batch, opts.Pool = l.Budget.Batch, l.Budget.Pool
		off := core.NewOfflineTrainer(l.Sim, opts).Run(mathx.NewRNG(l.rng(3410)))
		lo := core.DefaultOnlineOptions()
		lo.Pool = l.Budget.Pool
		learner := core.NewOnlineLearner(off.Policy, l.Sim, lo, mathx.NewRNG(l.rng(3411)))
		addFootprint(r, "No stage 1", baselines.RunOnline(learner, l.Real, l.Space, l.SLA, 1, iters, oracle, l.rng(3412)))
	}

	// No stage 2: no offline policy; everything learned online.
	{
		lo := core.DefaultOnlineOptions()
		lo.Pool = l.Budget.Pool
		learner := core.NewOnlineLearner(nil, l.Augmented(), lo, mathx.NewRNG(l.rng(3420)))
		addFootprint(r, "No stage 2", baselines.RunOnline(learner, l.Real, l.Space, l.SLA, 1, iters, oracle, l.rng(3421)))
	}

	// No stage 3: apply the offline optimum open-loop.
	{
		fixed := &fixedPolicy{name: "No stage 3", cfg: l.Offline(1, l.SLA).BestConfig}
		addFootprint(r, "No stage 3", baselines.RunOnline(fixed, l.Real, l.Space, l.SLA, 1, iters, oracle, l.rng(3431)))
	}

	r.AddNote("paper: no stage 3 -> constant usage, QoE ~0.65; no stage 2 -> poor early performance; no stage 1 -> worse QoE")
	return r
}

func addFootprint(r *Result, name string, run *baselines.RunResult) {
	r.AddRow(name, 100*mathx.Vector(run.Usages).Mean(), mathx.Vector(run.QoEs).Mean(),
		baselines.MeanTail(run.QoEs, maxInt(1, len(run.QoEs)/5)))
}

// fixedPolicy applies one configuration forever (the "No stage 3"
// ablation).
type fixedPolicy struct {
	name string
	cfg  slicing.Config
}

func (f *fixedPolicy) Name() string { return f.name }
func (f *fixedPolicy) Next(int, *rand.Rand) slicing.Config {
	return f.cfg
}
func (f *fixedPolicy) Observe(int, slicing.Config, float64, float64) {}

// fig25 reproduces Fig. 25: average QoE regret under user traffic 2–4.
func fig25(p Params) *Result {
	return trafficSweep(p, "fig25", "Avg QoE regret under different user traffic", func(run *baselines.RunResult) float64 {
		return run.Regret.AvgQoERegret()
	})
}

// fig26 reproduces Fig. 26: average usage regret under user traffic 2–4.
func fig26(p Params) *Result {
	return trafficSweep(p, "fig26", "Avg usage regret (%) under different user traffic", func(run *baselines.RunResult) float64 {
		return 100 * run.Regret.AvgUsageRegret()
	})
}

func trafficSweep(p Params, id, title string, metric func(*baselines.RunResult) float64) *Result {
	l := p.Lab
	// The paper relaxes the threshold to 500 ms for the traffic sweep.
	sla := slicing.SLA{ThresholdMs: 500, Availability: l.SLA.Availability}
	r := &Result{ID: id, Title: title,
		Header: []string{"Baseline", "VirtualEdge", "DLDA", "Ours"}}
	iters := maxInt(10, p.Budget.OnlineIters/2)
	for traffic := 2; traffic <= 4; traffic++ {
		runs := runAll(l, traffic, sla, iters, int64(3500+10*traffic))
		vals := make([]float64, len(runs))
		for i, run := range runs {
			vals[i] = metric(run)
		}
		r.AddRow(label("traffic", traffic), vals...)
	}
	r.AddNote("shape: ours lowest for almost all traffic levels (paper Figs. 25-26)")
	return r
}
