// Package bnn implements a Bayesian neural network trained with
// Bayes-by-Backprop (Blundell et al. 2015), the surrogate model of the
// paper's stage 1 and stage 2 (§4.2): every weight carries a Gaussian
// variational posterior N(μ, σ²) with σ = softplus(ρ), training
// minimizes the ELBO (Eq. 3–4 of the paper, with the Gaussian KL term
// computed analytically), and a single reparameterized draw of the
// weights yields the function realization that parallel Thompson
// sampling evaluates over candidate pools.
package bnn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/nn"
	"github.com/atlas-slicing/atlas/internal/stats"
)

// Options configures a Model.
type Options struct {
	Hidden []int // hidden layer widths
	// PriorStd is the std of the zero-mean Gaussian weight prior.
	PriorStd float64
	// NoiseStd is the observation noise of the Gaussian likelihood (in
	// standardized target units).
	NoiseStd float64
	// InitSigma is the initial posterior std of every weight.
	InitSigma float64
	// KLWeight scales the complexity term relative to one data point;
	// the effective weight per example is KLWeight / N.
	KLWeight float64
}

// DefaultOptions returns a configuration sized for the experiment
// harness. The paper's 128×256×256×128 architecture is available by
// overriding Hidden (see PaperOptions); the default is smaller so that
// hundreds of Bayesian-optimization iterations run in seconds in pure
// Go.
func DefaultOptions() Options {
	return Options{
		Hidden:    []int{32, 64, 32},
		PriorStd:  1.0,
		NoiseStd:  0.15,
		InitSigma: 0.05,
		KLWeight:  1.0,
	}
}

// PaperOptions returns the paper's §7.3 architecture.
func PaperOptions() Options {
	o := DefaultOptions()
	o.Hidden = []int{128, 256, 256, 128}
	return o
}

// bayesLayer holds the variational parameters of one fully connected
// layer plus scratch space for the current realization.
type bayesLayer struct {
	in, out   int
	muW, rhoW []float64
	muB, rhoB []float64
	adaMuW    *nn.AdadeltaState
	adaRhoW   *nn.AdadeltaState
	adaMuB    *nn.AdadeltaState
	adaRhoB   *nn.AdadeltaState
}

func newBayesLayer(in, out int, initSigma float64, rng *rand.Rand) *bayesLayer {
	l := &bayesLayer{in: in, out: out}
	nW, nB := in*out, out
	l.muW = make([]float64, nW)
	l.rhoW = make([]float64, nW)
	l.muB = make([]float64, nB)
	l.rhoB = make([]float64, nB)
	scale := math.Sqrt(2.0 / float64(in))
	rho0 := mathx.SoftplusInv(initSigma)
	for i := range l.muW {
		l.muW[i] = scale * rng.NormFloat64()
		l.rhoW[i] = rho0
	}
	for i := range l.muB {
		l.rhoB[i] = rho0
	}
	l.adaMuW = nn.NewAdadeltaState(nW)
	l.adaRhoW = nn.NewAdadeltaState(nW)
	l.adaMuB = nn.NewAdadeltaState(nB)
	l.adaRhoB = nn.NewAdadeltaState(nB)
	return l
}

// Model is a Bayesian MLP with a scalar output and an internal target
// scaler. The zero value is not usable; construct with New.
type Model struct {
	opts   Options
	inDim  int
	layers []*bayesLayer
	scaler stats.Scaler
	rng    *rand.Rand
	fitted bool
}

// New constructs a Bayesian network for inDim-dimensional inputs.
func New(inDim int, opts Options, rng *rand.Rand) *Model {
	if inDim <= 0 {
		panic(fmt.Sprintf("bnn: bad input dim %d", inDim))
	}
	if len(opts.Hidden) == 0 {
		opts.Hidden = DefaultOptions().Hidden
	}
	if opts.PriorStd <= 0 {
		opts.PriorStd = 1.0
	}
	if opts.NoiseStd <= 0 {
		opts.NoiseStd = 0.15
	}
	if opts.InitSigma <= 0 {
		opts.InitSigma = 0.05
	}
	if opts.KLWeight <= 0 {
		opts.KLWeight = 1.0
	}
	m := &Model{opts: opts, inDim: inDim, rng: rng}
	dims := append([]int{inDim}, opts.Hidden...)
	dims = append(dims, 1)
	for i := 0; i+1 < len(dims); i++ {
		m.layers = append(m.layers, newBayesLayer(dims[i], dims[i+1], opts.InitSigma, rng))
	}
	return m
}

// InDim returns the model's input dimensionality.
func (m *Model) InDim() int { return m.inDim }

// Draw is a realized function: one reparameterized sample of all
// weights. Draws are immutable and safe for concurrent evaluation —
// exactly what parallel Thompson sampling requires.
type Draw struct {
	layers []drawLayer
}

type drawLayer struct {
	in, out int
	w, b    []float64
}

// Draw samples one function realization w = μ + softplus(ρ)·ε.
func (m *Model) Draw(rng *rand.Rand) *Draw {
	d := &Draw{layers: make([]drawLayer, len(m.layers))}
	for li, l := range m.layers {
		dl := drawLayer{in: l.in, out: l.out,
			w: make([]float64, len(l.muW)), b: make([]float64, len(l.muB))}
		for i := range dl.w {
			dl.w[i] = l.muW[i] + mathx.Softplus(l.rhoW[i])*rng.NormFloat64()
		}
		for i := range dl.b {
			dl.b[i] = l.muB[i] + mathx.Softplus(l.rhoB[i])*rng.NormFloat64()
		}
		d.layers[li] = dl
	}
	return d
}

// MeanDraw returns the posterior-mean function (ε = 0), the "exploit
// only" realization.
func (m *Model) MeanDraw() *Draw {
	d := &Draw{layers: make([]drawLayer, len(m.layers))}
	for li, l := range m.layers {
		dl := drawLayer{in: l.in, out: l.out,
			w: append([]float64(nil), l.muW...), b: append([]float64(nil), l.muB...)}
		d.layers[li] = dl
	}
	return d
}

// evalStandardized runs the realized network in standardized target
// space.
func (d *Draw) evalStandardized(x []float64) float64 {
	a := x
	for li := range d.layers {
		l := &d.layers[li]
		out := make([]float64, l.out)
		last := li == len(d.layers)-1
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, w := range row {
				sum += w * a[i]
			}
			if !last && sum < 0 {
				sum = 0
			}
			out[o] = sum
		}
		a = out
	}
	return a[0]
}

// Eval evaluates the realized function at x in original target units.
// The scaler is captured from the owning model at evaluation time; Draws
// are meant to be used immediately after drawing.
func (m *Model) Eval(d *Draw, x []float64) float64 {
	return m.scaler.Inverse(d.evalStandardized(x))
}

// evalBuffered is evalStandardized with caller-provided ping-pong
// activation buffers (each at least as wide as the widest layer), so a
// pool-wide sweep reuses two slices instead of allocating per layer per
// input. Identical arithmetic, identical results.
func (d *Draw) evalBuffered(x, buf1, buf2 []float64) float64 {
	a := x
	next, other := buf1, buf2
	for li := range d.layers {
		l := &d.layers[li]
		out := next[:l.out]
		last := li == len(d.layers)-1
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, w := range row {
				sum += w * a[i]
			}
			if !last && sum < 0 {
				sum = 0
			}
			out[o] = sum
		}
		a = out
		next, other = other, next
	}
	return a[0]
}

// maxWidth returns the widest layer output of the realized network.
func (d *Draw) maxWidth() int {
	w := 1
	for i := range d.layers {
		if d.layers[i].out > w {
			w = d.layers[i].out
		}
	}
	return w
}

// EvalBatchAccum evaluates the realized function at every input in
// original target units, adding each value to sum and its square to
// sumSq — the accumulation primitive of Monte-Carlo batch prediction.
// Two activation buffers are allocated once per call and reused across
// the whole pool, so the per-input cost is allocation-free. Values are
// bit-identical to calling Eval per input in order.
func (m *Model) EvalBatchAccum(d *Draw, xs [][]float64, sum, sumSq []float64) {
	w := d.maxWidth()
	buf1 := make([]float64, w)
	buf2 := make([]float64, w)
	for j, x := range xs {
		v := m.scaler.Inverse(d.evalBuffered(x, buf1, buf2))
		sum[j] += v
		sumSq[j] += v * v
	}
}

// Predict returns the Monte Carlo posterior mean and std at x using k
// weight draws (k ≥ 2).
func (m *Model) Predict(x []float64, k int, rng *rand.Rand) (mean, std float64) {
	if k < 2 {
		k = 2
	}
	vals := make([]float64, k)
	for i := 0; i < k; i++ {
		vals[i] = m.Draw(rng).evalStandardized(x)
	}
	s := stats.Summarize(vals)
	return m.scaler.Inverse(s.Mean), m.scaler.InverseStd(s.Std)
}

// Fit trains the variational posterior on (xs, ys) for the given number
// of epochs, continuing from the current parameters (the
// Bayesian-optimization loop retrains on the growing collection each
// iteration). It refits the target scaler and returns the final
// per-example negative log likelihood in standardized space.
func (m *Model) Fit(xs [][]float64, ys []float64, epochs, batchSize int) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("bnn: %d inputs but %d targets", len(xs), len(ys)))
	}
	if len(xs) == 0 {
		return 0
	}
	if epochs <= 0 {
		epochs = 1
	}
	if batchSize <= 0 {
		batchSize = 128
	}
	m.scaler.Fit(ys)
	ty := m.scaler.TransformAll(ys)
	m.fitted = true

	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	noiseVar := m.opts.NoiseStd * m.opts.NoiseStd
	klScale := m.opts.KLWeight / float64(n)

	var lastNLL float64
	for ep := 0; ep < epochs; ep++ {
		m.rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var nll float64
		for start := 0; start < n; start += batchSize {
			end := start + batchSize
			if end > n {
				end = n
			}
			nll += m.trainBatch(xs, ty, idx[start:end], noiseVar, klScale)
		}
		lastNLL = nll / float64(n)
	}
	return lastNLL
}

// Fitted reports whether the model has seen data.
func (m *Model) Fitted() bool { return m.fitted }
