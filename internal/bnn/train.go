package bnn

import (
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// realization holds one reparameterized weight sample together with the
// noise that produced it, which the pathwise gradient needs.
type realization struct {
	w, b       [][]float64 // per layer
	epsW, epsB [][]float64
}

func (m *Model) sample(rng *rand.Rand) *realization {
	r := &realization{}
	for _, l := range m.layers {
		w := make([]float64, len(l.muW))
		eW := make([]float64, len(l.muW))
		for i := range w {
			eW[i] = rng.NormFloat64()
			w[i] = l.muW[i] + mathx.Softplus(l.rhoW[i])*eW[i]
		}
		b := make([]float64, len(l.muB))
		eB := make([]float64, len(l.muB))
		for i := range b {
			eB[i] = rng.NormFloat64()
			b[i] = l.muB[i] + mathx.Softplus(l.rhoB[i])*eB[i]
		}
		r.w = append(r.w, w)
		r.b = append(r.b, b)
		r.epsW = append(r.epsW, eW)
		r.epsB = append(r.epsB, eB)
	}
	return r
}

// trainBatch performs one Bayes-by-Backprop step on the index subset:
// a single weight draw for the batch, pathwise gradients of the Gaussian
// NLL through the realized weights, plus the analytic KL(q‖p) gradient,
// then an Adadelta update of (μ, ρ). It returns the batch NLL.
func (m *Model) trainBatch(xs [][]float64, ty []float64, batch []int, noiseVar, klScale float64) float64 {
	r := m.sample(m.rng)
	L := len(m.layers)

	// Gradient accumulators w.r.t. realized weights.
	gW := make([][]float64, L)
	gB := make([][]float64, L)
	for li, l := range m.layers {
		gW[li] = make([]float64, len(l.muW))
		gB[li] = make([]float64, len(l.muB))
	}

	var nll float64
	for _, i := range batch {
		// Forward with caches.
		acts := make([][]float64, L+1)
		acts[0] = xs[i]
		a := xs[i]
		for li := range m.layers {
			l := m.layers[li]
			out := make([]float64, l.out)
			last := li == L-1
			for o := 0; o < l.out; o++ {
				sum := r.b[li][o]
				row := r.w[li][o*l.in : (o+1)*l.in]
				for k, w := range row {
					sum += w * a[k]
				}
				if !last && sum < 0 {
					sum = 0
				}
				out[o] = sum
			}
			a = out
			acts[li+1] = a
		}
		pred := a[0]
		diff := pred - ty[i]
		nll += 0.5 * diff * diff / noiseVar

		// Backward: dNLL/dpred = diff/noiseVar.
		delta := []float64{diff / noiseVar}
		for li := L - 1; li >= 0; li-- {
			l := m.layers[li]
			in := acts[li]
			for o := 0; o < l.out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				gB[li][o] += d
				grow := gW[li][o*l.in : (o+1)*l.in]
				for k, x := range in {
					grow[k] += d * x
				}
			}
			if li == 0 {
				break
			}
			prev := make([]float64, l.in)
			for k := 0; k < l.in; k++ {
				if in[k] <= 0 {
					continue
				}
				var sum float64
				for o := 0; o < l.out; o++ {
					sum += delta[o] * r.w[li][o*l.in+k]
				}
				prev[k] = sum
			}
			delta = prev
		}
	}

	// Convert to variational-parameter gradients and add the KL term,
	// then update. Gradients are averaged over the batch; the KL term
	// uses klScale = KLWeight/N so a full epoch sees the complexity
	// cost once.
	bs := float64(len(batch))
	priorVar := m.opts.PriorStd * m.opts.PriorStd
	for li, l := range m.layers {
		gradMuW := make([]float64, len(l.muW))
		gradRhoW := make([]float64, len(l.muW))
		for i := range l.muW {
			sig := mathx.Softplus(l.rhoW[i])
			dW := gW[li][i] / bs
			// Pathwise: dL/dμ = dL/dw ; dL/dρ = dL/dw · ε · sigmoid(ρ).
			gradMuW[i] = dW + klScale*l.muW[i]/priorVar
			dKLdSig := -1/sig + sig/priorVar
			gradRhoW[i] = (dW*r.epsW[li][i] + klScale*dKLdSig) * mathx.Sigmoid(l.rhoW[i])
		}
		gradMuB := make([]float64, len(l.muB))
		gradRhoB := make([]float64, len(l.muB))
		for i := range l.muB {
			sig := mathx.Softplus(l.rhoB[i])
			dB := gB[li][i] / bs
			gradMuB[i] = dB + klScale*l.muB[i]/priorVar
			dKLdSig := -1/sig + sig/priorVar
			gradRhoB[i] = (dB*r.epsB[li][i] + klScale*dKLdSig) * mathx.Sigmoid(l.rhoB[i])
		}
		l.adaMuW.Step(l.muW, gradMuW, 1.0)
		l.adaRhoW.Step(l.rhoW, gradRhoW, 1.0)
		l.adaMuB.Step(l.muB, gradMuB, 1.0)
		l.adaRhoB.Step(l.rhoB, gradRhoB, 1.0)
	}
	return nll
}
