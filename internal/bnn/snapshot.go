package bnn

import (
	"fmt"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/nn"
	"github.com/atlas-slicing/atlas/internal/stats"
)

// SnapshotVersion tags the Bayesian-network snapshot encoding; restore
// rejects other versions with a diagnostic instead of misreading bytes.
const SnapshotVersion = 1

// LayerState is the serializable form of one variational layer: the
// (μ, ρ) posteriors plus the Adadelta accumulators, so a restored model
// both predicts and continues training bit-identically (given the same
// RNG stream).
type LayerState struct {
	In      int                  `json:"in"`
	Out     int                  `json:"out"`
	MuW     []float64            `json:"mu_w"`
	RhoW    []float64            `json:"rho_w"`
	MuB     []float64            `json:"mu_b"`
	RhoB    []float64            `json:"rho_b"`
	AdaMuW  *nn.AdadeltaSnapshot `json:"ada_mu_w,omitempty"`
	AdaRhoW *nn.AdadeltaSnapshot `json:"ada_rho_w,omitempty"`
	AdaMuB  *nn.AdadeltaSnapshot `json:"ada_mu_b,omitempty"`
	AdaRhoB *nn.AdadeltaSnapshot `json:"ada_rho_b,omitempty"`
}

// State is the versioned serializable form of a Model. The training RNG
// is deliberately not captured: restore takes a fresh one, and callers
// that need reproducible post-restore sampling reseed explicitly.
type State struct {
	Version int               `json:"version"`
	InDim   int               `json:"in_dim"`
	Opts    Options           `json:"opts"`
	Layers  []LayerState      `json:"layers"`
	Scaler  stats.ScalerState `json:"scaler"`
	Fitted  bool              `json:"fitted"`
}

// Snapshot returns a deep-copied serializable snapshot of the model.
func (m *Model) Snapshot() *State {
	s := &State{
		Version: SnapshotVersion,
		InDim:   m.inDim,
		Opts:    m.opts,
		Scaler:  m.scaler.State(),
		Fitted:  m.fitted,
	}
	for _, l := range m.layers {
		s.Layers = append(s.Layers, LayerState{
			In:      l.in,
			Out:     l.out,
			MuW:     append([]float64(nil), l.muW...),
			RhoW:    append([]float64(nil), l.rhoW...),
			MuB:     append([]float64(nil), l.muB...),
			RhoB:    append([]float64(nil), l.rhoB...),
			AdaMuW:  l.adaMuW.Snapshot(),
			AdaRhoW: l.adaRhoW.Snapshot(),
			AdaMuB:  l.adaMuB.Snapshot(),
			AdaRhoB: l.adaRhoB.Snapshot(),
		})
	}
	return s
}

// FromSnapshot rebuilds a model from its snapshot, validating the
// version tag and every layer's dimensions. rng seeds the restored
// model's training/sampling stream (snapshot encodings never carry RNG
// state).
func FromSnapshot(s *State, rng *rand.Rand) (*Model, error) {
	if s == nil {
		return nil, fmt.Errorf("bnn: nil snapshot")
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("bnn: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	if s.InDim <= 0 {
		return nil, fmt.Errorf("bnn: snapshot input dim %d", s.InDim)
	}
	if len(s.Layers) == 0 {
		return nil, fmt.Errorf("bnn: snapshot has no layers")
	}
	if s.Layers[0].In != s.InDim {
		return nil, fmt.Errorf("bnn: first layer dim %d does not match input dim %d", s.Layers[0].In, s.InDim)
	}
	if last := s.Layers[len(s.Layers)-1]; last.Out != 1 {
		return nil, fmt.Errorf("bnn: final layer width %d, want scalar output", last.Out)
	}
	m := &Model{opts: s.Opts, inDim: s.InDim, rng: rng, fitted: s.Fitted}
	m.scaler = stats.ScalerFromState(s.Scaler)
	for i, ls := range s.Layers {
		if ls.In <= 0 || ls.Out <= 0 {
			return nil, fmt.Errorf("bnn: layer %d has bad dims %dx%d", i, ls.In, ls.Out)
		}
		if i > 0 && ls.In != s.Layers[i-1].Out {
			return nil, fmt.Errorf("bnn: layer %d input dim %d does not chain from previous output %d",
				i, ls.In, s.Layers[i-1].Out)
		}
		nW, nB := ls.In*ls.Out, ls.Out
		if len(ls.MuW) != nW || len(ls.RhoW) != nW || len(ls.MuB) != nB || len(ls.RhoB) != nB {
			return nil, fmt.Errorf("bnn: layer %d parameter lengths inconsistent with dims %dx%d", i, ls.In, ls.Out)
		}
		l := &bayesLayer{
			in:   ls.In,
			out:  ls.Out,
			muW:  append([]float64(nil), ls.MuW...),
			rhoW: append([]float64(nil), ls.RhoW...),
			muB:  append([]float64(nil), ls.MuB...),
			rhoB: append([]float64(nil), ls.RhoB...),
		}
		var err error
		if l.adaMuW, err = nn.AdadeltaFromSnapshot(ls.AdaMuW, nW); err != nil {
			return nil, fmt.Errorf("bnn: layer %d: %w", i, err)
		}
		if l.adaRhoW, err = nn.AdadeltaFromSnapshot(ls.AdaRhoW, nW); err != nil {
			return nil, fmt.Errorf("bnn: layer %d: %w", i, err)
		}
		if l.adaMuB, err = nn.AdadeltaFromSnapshot(ls.AdaMuB, nB); err != nil {
			return nil, fmt.Errorf("bnn: layer %d: %w", i, err)
		}
		if l.adaRhoB, err = nn.AdadeltaFromSnapshot(ls.AdaRhoB, nB); err != nil {
			return nil, fmt.Errorf("bnn: layer %d: %w", i, err)
		}
		m.layers = append(m.layers, l)
	}
	return m, nil
}
