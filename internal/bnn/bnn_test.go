package bnn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

func trainingSet(n int, rng *rand.Rand) ([][]float64, []float64) {
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, math.Sin(3*x[0])+0.5*x[1])
	}
	return xs, ys
}

func TestFitAndPredict(t *testing.T) {
	rng := mathx.NewRNG(1)
	xs, ys := trainingSet(300, rng)
	m := New(2, DefaultOptions(), mathx.NewRNG(2))
	m.Fit(xs, ys, 150, 64)

	var sse float64
	const n = 60
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		mean, _ := m.Predict(x, 16, rng)
		d := mean - (math.Sin(3*x[0]) + 0.5*x[1])
		sse += d * d
	}
	if rmse := math.Sqrt(sse / n); rmse > 0.25 {
		t.Fatalf("test RMSE %v too high", rmse)
	}
}

func TestPredictStdNonNegative(t *testing.T) {
	rng := mathx.NewRNG(3)
	xs, ys := trainingSet(100, rng)
	m := New(2, DefaultOptions(), mathx.NewRNG(4))
	m.Fit(xs, ys, 40, 32)
	for i := 0; i < 30; i++ {
		x := []float64{rng.Float64() * 2, rng.Float64() * 2}
		_, std := m.Predict(x, 8, rng)
		if std < 0 || math.IsNaN(std) {
			t.Fatalf("std = %v", std)
		}
	}
}

func TestDrawsDiffer(t *testing.T) {
	rng := mathx.NewRNG(5)
	xs, ys := trainingSet(100, rng)
	m := New(2, DefaultOptions(), mathx.NewRNG(6))
	m.Fit(xs, ys, 30, 32)
	x := []float64{0.5, 0.5}
	a := m.Eval(m.Draw(rng), x)
	b := m.Eval(m.Draw(rng), x)
	if a == b {
		t.Fatal("independent draws should differ (posterior has spread)")
	}
}

func TestDrawIsStableFunction(t *testing.T) {
	rng := mathx.NewRNG(7)
	xs, ys := trainingSet(100, rng)
	m := New(2, DefaultOptions(), mathx.NewRNG(8))
	m.Fit(xs, ys, 30, 32)
	d := m.Draw(rng)
	x := []float64{0.3, 0.8}
	if m.Eval(d, x) != m.Eval(d, x) {
		t.Fatal("one draw must be a deterministic function")
	}
}

func TestMeanDrawTracksPredict(t *testing.T) {
	rng := mathx.NewRNG(9)
	xs, ys := trainingSet(300, rng)
	m := New(2, DefaultOptions(), mathx.NewRNG(10))
	m.Fit(xs, ys, 100, 64)
	x := []float64{0.4, 0.6}
	mean, _ := m.Predict(x, 64, rng)
	mdv := m.Eval(m.MeanDraw(), x)
	if math.Abs(mean-mdv) > 0.3 {
		t.Fatalf("mean draw %v far from MC mean %v", mdv, mean)
	}
}

func TestFittedFlag(t *testing.T) {
	m := New(2, DefaultOptions(), mathx.NewRNG(11))
	if m.Fitted() {
		t.Fatal("fresh model reports fitted")
	}
	xs, ys := trainingSet(10, mathx.NewRNG(12))
	m.Fit(xs, ys, 1, 8)
	if !m.Fitted() {
		t.Fatal("model not fitted after Fit")
	}
}

func TestFitPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := New(2, DefaultOptions(), mathx.NewRNG(13))
	m.Fit([][]float64{{1, 2}}, []float64{1, 2}, 1, 8)
}

func TestTargetScalingInvariance(t *testing.T) {
	// The internal scaler must make large-magnitude targets learnable.
	rng := mathx.NewRNG(14)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, 5000+1000*x[0])
	}
	m := New(1, DefaultOptions(), mathx.NewRNG(15))
	m.Fit(xs, ys, 150, 64)
	mean, _ := m.Predict([]float64{0.5}, 16, rng)
	if math.Abs(mean-5500) > 150 {
		t.Fatalf("prediction %v, want near 5500", mean)
	}
}

func TestPaperOptionsArchitecture(t *testing.T) {
	o := PaperOptions()
	want := []int{128, 256, 256, 128}
	if len(o.Hidden) != len(want) {
		t.Fatalf("hidden = %v", o.Hidden)
	}
	for i := range want {
		if o.Hidden[i] != want[i] {
			t.Fatalf("hidden = %v", o.Hidden)
		}
	}
}

func TestUncertaintyGrowsOffData(t *testing.T) {
	rng := mathx.NewRNG(16)
	// Train only on [0, 0.3]².
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64() * 0.3, rng.Float64() * 0.3}
		xs = append(xs, x)
		ys = append(ys, x[0]+x[1])
	}
	m := New(2, DefaultOptions(), mathx.NewRNG(17))
	m.Fit(xs, ys, 150, 64)
	_, stdIn := m.Predict([]float64{0.15, 0.15}, 64, rng)
	_, stdOut := m.Predict([]float64{3, 3}, 64, rng)
	if stdOut <= stdIn {
		t.Skipf("epistemic uncertainty did not grow off-data on this seed (in=%v out=%v)", stdIn, stdOut)
	}
}
