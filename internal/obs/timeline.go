package obs

import "sync"

// This file is the flight recorder's per-slice half: a bounded record
// of every lifecycle-relevant moment in one slice's life — engine
// decisions (admit/reject/place/resize/migrate/release/suspend), serve
// lifecycle transitions, and per-epoch delivered-QoE / envelope
// samples from the online loop. Entries carry the engine's decision
// trace sequence number (Seq) and the serve event-log sequence
// (LogSeq) where applicable, so a timeline cross-references -trace
// lines and /events records directly.

// Timeline entry kinds.
const (
	// KindDecision marks an engine decision about the slice
	// (admit/reject/place/resize/migrate/release/suspend/drain).
	KindDecision = "decision"
	// KindSample marks a per-epoch online sample: delivered QoE plus
	// the applied envelope demand.
	KindSample = "sample"
	// KindTransition marks a serve-plane lifecycle transition.
	KindTransition = "transition"
)

// TimelineEntry is one moment in a slice's life.
type TimelineEntry struct {
	// Seq is the engine decision-trace sequence number, shared with the
	// -trace slog records so the two streams cross-reference. Zero when
	// the entry did not originate from an engine decision.
	Seq uint64 `json:"seq,omitempty"`
	// Epoch is the control-plane epoch (for decisions/transitions) or
	// the slice's own step index (for samples).
	Epoch int `json:"epoch"`
	// Kind is one of KindDecision, KindSample, KindTransition.
	Kind string `json:"kind"`
	// Event names what happened: admit, reject, place, resize,
	// resize_migrate, release, suspend, drain, step, or a lifecycle
	// state name for transitions.
	Event string `json:"event"`
	// Site is the hosting site, when known.
	Site string `json:"site,omitempty"`
	// Detail carries event-specific context (rejection reason, target
	// state, migration source site).
	Detail string `json:"detail,omitempty"`
	// QoE is the delivered QoE for sample entries (raw model output,
	// before any placement locality toll).
	QoE float64 `json:"qoe,omitempty"`
	// Demand is the applied envelope demand [ran_prb, tn_mbps, cn_cpu]
	// for sample and resize entries.
	Demand []float64 `json:"demand,omitempty"`
	// LogSeq is the serve event-log sequence number for transition
	// entries, cross-referencing GET /events.
	LogSeq int `json:"log_seq,omitempty"`
}

// Timeline is a bounded ring of entries for one slice. Appends beyond
// the capacity evict the oldest entry and bump Dropped, so a long-lived
// slice keeps its most recent history plus an honest truncation count.
type Timeline struct {
	mu      sync.Mutex
	buf     []TimelineEntry
	head    int
	n       int
	dropped uint64
}

func (t *Timeline) append(e TimelineEntry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < len(t.buf) {
		t.buf[(t.head+t.n)%len(t.buf)] = e
		t.n++
		return
	}
	t.buf[t.head] = e
	t.head = (t.head + 1) % len(t.buf)
	t.dropped++
}

// Entries returns a copy of the retained entries, oldest first.
func (t *Timeline) Entries() []TimelineEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelineEntry, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.head+i)%len(t.buf)])
	}
	return out
}

// Dropped reports how many entries the ring bound has evicted.
func (t *Timeline) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// TimelineView is one slice's exported timeline — the JSON shape GET
// /slices/{id}/timeline returns, and the per-slice file shape the serve
// drain flushes next to the event log.
type TimelineView struct {
	Slice   string          `json:"slice"`
	Dropped uint64          `json:"dropped,omitempty"`
	Entries []TimelineEntry `json:"entries"`
}

// Defaults for NewTimelineStore when given non-positive bounds.
const (
	DefaultTimelineCap = 512
	DefaultMaxSlices   = 4096
)

// TimelineStore holds the per-slice timelines, bounded two ways: each
// timeline keeps at most perSlice entries, and the store tracks at most
// maxSlices slices (the oldest-tracked slice is evicted wholesale when
// a new one would exceed the bound). Appends for distinct slices
// contend only on the map lookup; a nil *TimelineStore no-ops
// everywhere so untracked runs pay a nil check.
type TimelineStore struct {
	mu        sync.Mutex
	perSlice  int
	maxSlices int
	slices    map[string]*Timeline
	order     []string
	evicted   uint64
}

// NewTimelineStore returns a store keeping up to perSlice entries for
// each of up to maxSlices slices (non-positive selects the defaults).
func NewTimelineStore(perSlice, maxSlices int) *TimelineStore {
	if perSlice <= 0 {
		perSlice = DefaultTimelineCap
	}
	if maxSlices <= 0 {
		maxSlices = DefaultMaxSlices
	}
	return &TimelineStore{
		perSlice:  perSlice,
		maxSlices: maxSlices,
		slices:    map[string]*Timeline{},
	}
}

func (ts *TimelineStore) timeline(id string) *Timeline {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.slices[id]
	if !ok {
		for len(ts.slices) >= ts.maxSlices && len(ts.order) > 0 {
			delete(ts.slices, ts.order[0])
			ts.order = ts.order[1:]
			ts.evicted++
		}
		t = &Timeline{buf: make([]TimelineEntry, ts.perSlice)}
		ts.slices[id] = t
		ts.order = append(ts.order, id)
	}
	return t
}

// Append records one entry on the slice's timeline, creating it on
// first use. No-op on a nil store.
func (ts *TimelineStore) Append(id string, e TimelineEntry) {
	ts.timeline(id).append(e)
}

// Get returns the slice's timeline view (ok=false if untracked).
func (ts *TimelineStore) Get(id string) (TimelineView, bool) {
	if ts == nil {
		return TimelineView{}, false
	}
	ts.mu.Lock()
	t := ts.slices[id]
	ts.mu.Unlock()
	if t == nil {
		return TimelineView{}, false
	}
	return TimelineView{Slice: id, Dropped: t.Dropped(), Entries: t.Entries()}, true
}

// Slices returns the tracked slice IDs, oldest-tracked first.
func (ts *TimelineStore) Slices() []string {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]string(nil), ts.order...)
}

// Evicted reports how many whole slices the maxSlices bound dropped.
func (ts *TimelineStore) Evicted() uint64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.evicted
}
