package obs

import "sync"

// This file is the flight recorder's time-series half: fixed-capacity
// ring buffers of (epoch, value) samples the serve daemon and the batch
// fleet controller append fleet aggregates into once per epoch, and the
// /history endpoint reads back. Like the rest of the package it is
// result-invariant by construction — recording reads already-computed
// aggregates, consumes no randomness, and feeds nothing back into a
// decision path.

// Point is one recorded sample: the control-plane epoch it was taken at
// and the value.
type Point struct {
	Epoch int     `json:"epoch"`
	Value float64 `json:"value"`
}

// Series is a fixed-capacity ring buffer of Points. Appends are O(1)
// and overwrite the oldest sample once the capacity is reached, so a
// long-lived daemon holds the most recent window at bounded memory. A
// nil *Series no-ops on every method.
type Series struct {
	mu      sync.Mutex
	name    string
	buf     []Point
	head    int // index of the oldest sample
	n       int // samples held (<= cap(buf))
	dropped uint64
}

// Name returns the series name.
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Append records one sample, evicting the oldest when full.
func (s *Series) Append(epoch int, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < len(s.buf) {
		s.buf[(s.head+s.n)%len(s.buf)] = Point{Epoch: epoch, Value: v}
		s.n++
		return
	}
	s.buf[s.head] = Point{Epoch: epoch, Value: v}
	s.head = (s.head + 1) % len(s.buf)
	s.dropped++
}

// Points returns the retained samples with Epoch >= since, oldest
// first. The result is a copy; callers may retain it.
func (s *Series) Points(since int) []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Point
	for i := 0; i < s.n; i++ {
		p := s.buf[(s.head+i)%len(s.buf)]
		if p.Epoch >= since {
			out = append(out, p)
		}
	}
	return out
}

// Last returns the most recent sample (ok=false on an empty series).
func (s *Series) Last() (Point, bool) {
	if s == nil {
		return Point{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Point{}, false
	}
	return s.buf[(s.head+s.n-1)%len(s.buf)], true
}

// WindowSum sums the retained values — the flight recorder's window is
// the ring capacity, so this is "the sum over the recorded history".
func (s *Series) WindowSum() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := 0.0
	for i := 0; i < s.n; i++ {
		sum += s.buf[(s.head+i)%len(s.buf)].Value
	}
	return sum
}

// Len reports how many samples the series currently holds.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// SeriesHistory is one series' exported window — the JSON shape GET
// /history returns per requested series.
type SeriesHistory struct {
	Name string `json:"name"`
	// Dropped counts samples evicted by the ring bound since start, so
	// a consumer can tell a short history from a truncated one.
	Dropped uint64  `json:"dropped,omitempty"`
	Points  []Point `json:"points"`
}

// Recorder owns the named series plus an optional set of watched
// sources sampled on every Sample call. Registration and lookup take a
// mutex; appends lock only the one series touched. A nil *Recorder
// no-ops on every method, so an unrecorded run pays a nil check.
type Recorder struct {
	mu       sync.Mutex
	capacity int
	series   map[string]*Series
	order    []string
	watches  []watch
}

type watch struct {
	name string
	fn   func() float64
}

// DefaultSeriesCap is the per-series ring capacity when NewRecorder is
// given a non-positive one: enough for the recent operational window
// without unbounded growth.
const DefaultSeriesCap = 1024

// NewRecorder returns a recorder whose series each retain up to
// capacity samples (<= 0 selects DefaultSeriesCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &Recorder{capacity: capacity, series: map[string]*Series{}}
}

// Series finds or creates the named series. Nil recorder returns a nil
// (no-op) series.
func (r *Recorder) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seriesLocked(name)
}

func (r *Recorder) seriesLocked(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = &Series{name: name, buf: make([]Point, r.capacity)}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// Record appends one sample to the named series (creating it on first
// use). No-op on a nil recorder.
func (r *Recorder) Record(epoch int, name string, v float64) {
	r.Series(name).Append(epoch, v)
}

// Watch registers a source sampled into the named series on every
// Sample call — the bridge for gauges and counters a subsystem already
// maintains. No-op on a nil recorder.
func (r *Recorder) Watch(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesLocked(name)
	r.watches = append(r.watches, watch{name: name, fn: fn})
}

// Sample reads every watched source once and appends the values at the
// given epoch. No-op on a nil recorder.
func (r *Recorder) Sample(epoch int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	watches := append([]watch(nil), r.watches...)
	r.mu.Unlock()
	for _, w := range watches {
		r.Series(w.name).Append(epoch, w.fn())
	}
}

// Names returns the registered series names in registration order.
func (r *Recorder) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// History exports the requested series (nil or empty names = all, in
// registration order), each restricted to samples with Epoch >= since.
// Unknown names yield an entry with no points, so a consumer polling a
// fixed series list gets a stable shape. Nil recorder returns nil.
func (r *Recorder) History(names []string, since int) []SeriesHistory {
	if r == nil {
		return nil
	}
	if len(names) == 0 {
		names = r.Names()
	}
	out := make([]SeriesHistory, 0, len(names))
	for _, name := range names {
		r.mu.Lock()
		s := r.series[name]
		r.mu.Unlock()
		h := SeriesHistory{Name: name}
		if s != nil {
			h.Points = s.Points(since)
			s.mu.Lock()
			h.Dropped = s.dropped
			s.mu.Unlock()
		}
		if h.Points == nil {
			h.Points = []Point{}
		}
		out = append(out, h)
	}
	return out
}
