package obs

import (
	"encoding/json"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramSnapshotJSONRoundTrip serializes a histogram snapshot
// through encoding/json and back: the +Inf overflow bucket must be
// omitted (JSON cannot represent it), the finite buckets must survive
// exactly, and Count must still carry the total including overflow
// observations.
func TestHistogramSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50, 500} {
		h.Observe(v) // 50 and 500 land in the +Inf overflow bucket
	}

	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d series, want 1", len(snap))
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	if strings.Contains(string(b), "Inf") {
		t.Fatalf("snapshot JSON leaks an infinity: %s", b)
	}
	var back []MetricSeries
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	hs := back[0]
	if hs.Count != 5 {
		t.Fatalf("count = %d, want 5 (overflow observations must still count)", hs.Count)
	}
	if len(hs.Buckets) != 3 {
		t.Fatalf("round-tripped %d buckets, want 3 finite (no +Inf tail)", len(hs.Buckets))
	}
	// Cumulative finite buckets: 1 at 0.1, 2 at 1, 3 at 10; the two
	// overflow observations appear only in Count.
	for i, want := range []Bucket{{LE: 0.1, Count: 1}, {LE: 1, Count: 2}, {LE: 10, Count: 3}} {
		if hs.Buckets[i] != want {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, hs.Buckets[i], want)
		}
	}
	if math.Abs(hs.Sum-555.55) > 1e-9 {
		t.Fatalf("sum = %v, want 555.55", hs.Sum)
	}
}

// TestPrometheusNonFiniteGauges checks WritePrometheus renders NaN and
// ±Inf gauge values in the exposition format's own spelling instead of
// corrupting the line — Prometheus accepts NaN/+Inf/-Inf tokens.
func TestPrometheusNonFiniteGauges(t *testing.T) {
	r := NewRegistry()
	r.Gauge("test_nan", "").Set(math.NaN())
	r.Gauge("test_posinf", "").Set(math.Inf(1))
	r.Gauge("test_neginf", "").Set(math.Inf(-1))
	r.GaugeFunc("test_fn_nan", "", func() float64 { return math.NaN() })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"test_nan NaN\n",
		"test_posinf +Inf\n",
		"test_neginf -Inf\n",
		"test_fn_nan NaN\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every sample line must still be exactly "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

// TestConcurrentRegistrationVsExport races registration of new series
// against Snapshot and WritePrometheus — the -race job proves the
// registry mutex covers both sides and exports see a consistent family
// table.
func TestConcurrentRegistrationVsExport(t *testing.T) {
	r := NewRegistry()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				r.Counter("test_ops_total", "ops", L("worker", string(rune('a'+w)))).Inc()
				r.Gauge("test_level", "level", L("worker", string(rune('a'+w)))).Set(float64(i))
				r.Histogram("test_lat", "lat", nil, L("worker", string(rune('a'+w)))).Observe(0.001)
			}
		}(w)
	}
	stop := make(chan struct{})
	exporterDone := make(chan struct{})
	go func() {
		defer close(exporterDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				_ = r.WritePrometheus(io.Discard)
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-exporterDone

	snap := r.Snapshot()
	total := 0.0
	for _, s := range snap {
		if s.Name == "test_ops_total" {
			total += s.Value
		}
	}
	if total != 4*200 {
		t.Fatalf("counters total %v after concurrent export, want %d", total, 4*200)
	}
}
