// Package obs is the fleet's zero-dependency observability plane: a
// concurrent-safe registry of counters, gauges, and fixed-bucket
// latency histograms with atomic, lock-free increment paths, plus
// snapshot/export surfaces (Prometheus text exposition and structured
// JSON) for the serve daemon's /metrics and /stats endpoints.
//
// Two invariants shape the design:
//
//   - Instrumentation is result-invariant. Nothing in this package
//     touches an RNG stream or feeds back into a decision path; the
//     fleet's bit-identity parity tests run with metrics on and off
//     and compare Result fingerprints exactly.
//
//   - The increment path allocates nothing and takes no locks. Handles
//     (Counter, Gauge, Histogram) are registered once up front under
//     the registry mutex; after that every Inc/Add/Set/Observe is a
//     plain atomic operation. All handle methods are nil-safe, so an
//     uninstrumented subsystem (nil registry, nil handles) pays only a
//     predictable nil check on its hot path.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value pair attached to a metric series. Series
// within a family are distinguished by their full label sets.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil *Counter no-ops on every method.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
// The zero value is ready to use; a nil *Gauge no-ops on every method.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d via a compare-and-swap loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default latency bucket upper bounds in seconds:
// 100µs through 10s, covering sub-millisecond shard barrier waits up
// to multi-second offline training stages.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. Bucket bounds are
// immutable after registration; Observe is a lock-free atomic
// increment plus a CAS-add into the running sum. A nil *Histogram
// no-ops on every method.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; implicit +Inf tail
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (16 by default) and the
	// bounds are hot in cache; this beats binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// series is one labeled instance within a family: exactly one of the
// handle fields is non-nil, or fn is set for a collected-at-export
// series.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family groups all series sharing a metric name, type, and help text.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", or "histogram"
	series map[string]*series
}

// Registry holds the metric families. Registration takes a mutex;
// increments on returned handles never do. A nil *Registry returns
// nil handles from every constructor, so an uninstrumented subsystem
// can register and increment unconditionally at zero cost.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	k := ""
	for _, l := range sortedLabels(labels) {
		k += l.Key + "\x00" + l.Value + "\x00"
	}
	return k
}

func sortedLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Key < out[j-1].Key; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// lookup finds or creates the family and series slot for a
// registration, enforcing type consistency across callers: two
// packages registering the same name get the same underlying handle,
// and a name registered under conflicting types panics (programmer
// error, like a duplicate prometheus.MustRegister).
func (r *Registry) lookup(name, help, typ string, labels []Label) *series {
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic("obs: metric " + name + " registered as " + fam.typ + ", requested " + typ)
	}
	key := seriesKey(labels)
	s, ok := fam.series[key]
	if !ok {
		s = &series{labels: sortedLabels(labels)}
		fam.series[key] = s
	}
	return s
}

// Counter registers (or finds) a counter series and returns its
// handle. Nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, "counter", labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or finds) a gauge series and returns its handle.
// Nil registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, "gauge", labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or finds) a histogram series and returns its
// handle. Bounds apply on first registration of the series (nil means
// DefBuckets); later registrations reuse the existing buckets. Nil
// registry returns a nil (no-op) handle.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, "histogram", labels)
	if s.hist == nil {
		s.hist = newHistogram(bounds)
	}
	return s.hist
}

// CounterFunc registers a counter series whose value is read from fn
// at export time — the bridge for subsystems that already keep their
// own counters (e.g. the artifact store's Stats). No-op on a nil
// registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, "counter", fn, labels)
}

// GaugeFunc registers a gauge series whose value is read from fn at
// export time. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, "gauge", fn, labels)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64, labels []Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, typ, labels)
	s.fn = fn
}
