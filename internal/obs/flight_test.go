package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestSeriesRingEviction fills a ring past capacity and checks the
// retained window is the most recent samples, oldest first, with an
// honest dropped count.
func TestSeriesRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for epoch := 0; epoch < 10; epoch++ {
		r.Record(epoch, "live", float64(epoch*10))
	}
	s := r.Series("live")
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	pts := s.Points(0)
	if len(pts) != 4 || pts[0].Epoch != 6 || pts[3].Epoch != 9 {
		t.Fatalf("Points = %+v, want epochs 6..9", pts)
	}
	if last, ok := s.Last(); !ok || last != (Point{Epoch: 9, Value: 90}) {
		t.Fatalf("Last = %+v/%v, want {9 90}/true", last, ok)
	}
	if sum := s.WindowSum(); sum != 60+70+80+90 {
		t.Fatalf("WindowSum = %v, want 300", sum)
	}
	hist := r.History([]string{"live"}, 8)
	if len(hist) != 1 || hist[0].Dropped != 6 || len(hist[0].Points) != 2 {
		t.Fatalf("History = %+v, want dropped=6 and 2 points since epoch 8", hist)
	}
}

// TestRecorderHistoryShape checks History's contract: empty names
// export every series in registration order; unknown names still yield
// an entry with a non-nil empty Points slice so JSON consumers see a
// stable shape.
func TestRecorderHistoryShape(t *testing.T) {
	r := NewRecorder(0)
	r.Record(1, "b_second", 2)
	r.Record(1, "a_first", 1)

	all := r.History(nil, 0)
	if len(all) != 2 || all[0].Name != "b_second" || all[1].Name != "a_first" {
		t.Fatalf("History(nil) = %+v, want registration order [b_second a_first]", all)
	}

	h := r.History([]string{"missing"}, 0)
	if len(h) != 1 || h[0].Points == nil || len(h[0].Points) != 0 {
		t.Fatalf("History(missing) = %+v, want one entry with empty non-nil points", h)
	}
	b, err := json.Marshal(h[0])
	if err != nil || !strings.Contains(string(b), `"points":[]`) {
		t.Fatalf("unknown series must serialize points as [], got %s (err %v)", b, err)
	}
}

// TestRecorderWatchSample registers watched sources and checks Sample
// reads each one per call.
func TestRecorderWatchSample(t *testing.T) {
	r := NewRecorder(0)
	v := 0.0
	r.Watch("watched", func() float64 { v++; return v })
	r.Sample(1)
	r.Sample(2)
	pts := r.Series("watched").Points(0)
	if len(pts) != 2 || pts[0] != (Point{1, 1}) || pts[1] != (Point{2, 2}) {
		t.Fatalf("watched points = %+v", pts)
	}
}

// TestRecorderNilSafety drives every method through nil receivers.
func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.Record(1, "x", 1)
	r.Watch("x", func() float64 { return 1 })
	r.Sample(1)
	if r.Series("x") != nil || r.Names() != nil || r.History(nil, 0) != nil {
		t.Fatal("nil recorder must return nil from every accessor")
	}
	var s *Series
	s.Append(1, 1)
	if s.Len() != 0 || s.Points(0) != nil || s.WindowSum() != 0 || s.Name() != "" {
		t.Fatal("nil series must no-op")
	}
	if _, ok := s.Last(); ok {
		t.Fatal("nil series Last must report no sample")
	}
}

// TestRecorderConcurrentAppendVsHistory races appends on many series
// against History exports — the -race job proves the per-series locks
// plus registry mutex cover the recorder's read and write sides.
func TestRecorderConcurrentAppendVsHistory(t *testing.T) {
	r := NewRecorder(64)
	var writers sync.WaitGroup
	names := []string{"a", "b", "c", "d"}
	for _, name := range names {
		writers.Add(1)
		go func(name string) {
			defer writers.Done()
			for epoch := 0; epoch < 500; epoch++ {
				r.Record(epoch, name, float64(epoch))
			}
		}(name)
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.History(nil, 0)
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	for _, name := range names {
		if r.Series(name).Len() != 64 {
			t.Fatalf("series %s holds %d samples, want full ring of 64", name, r.Series(name).Len())
		}
	}
}

// TestTimelineStoreBounds checks both bounds: per-slice rings evict
// oldest entries with a dropped count, and the store evicts the
// oldest-tracked slice wholesale past maxSlices.
func TestTimelineStoreBounds(t *testing.T) {
	ts := NewTimelineStore(2, 2)
	for i := 0; i < 3; i++ {
		ts.Append("s1", TimelineEntry{Epoch: i, Kind: KindSample, Event: "step"})
	}
	view, ok := ts.Get("s1")
	if !ok || view.Dropped != 1 || len(view.Entries) != 2 || view.Entries[0].Epoch != 1 {
		t.Fatalf("s1 view = %+v/%v, want dropped=1, entries at epochs 1,2", view, ok)
	}

	ts.Append("s2", TimelineEntry{Kind: KindDecision, Event: "admit"})
	ts.Append("s3", TimelineEntry{Kind: KindDecision, Event: "admit"})
	if _, ok := ts.Get("s1"); ok {
		t.Fatal("s1 should have been evicted wholesale by the maxSlices bound")
	}
	if got := ts.Slices(); len(got) != 2 || got[0] != "s2" || got[1] != "s3" {
		t.Fatalf("Slices = %v, want [s2 s3]", got)
	}
	if ts.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", ts.Evicted())
	}
}

// TestTimelineNilSafety drives the store and timeline through nil
// receivers.
func TestTimelineNilSafety(t *testing.T) {
	var ts *TimelineStore
	ts.Append("x", TimelineEntry{})
	if _, ok := ts.Get("x"); ok || ts.Slices() != nil || ts.Evicted() != 0 {
		t.Fatal("nil store must no-op")
	}
	var tl *Timeline
	tl.append(TimelineEntry{})
	if tl.Entries() != nil || tl.Dropped() != 0 {
		t.Fatal("nil timeline must no-op")
	}
}

// TestHistogramQuantile checks the interpolated quantile estimate:
// in-bucket interpolation, the +Inf overflow clamp, and the NaN edge
// cases.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q", "", []float64{1, 2, 4})
	// 2 observations in (0,1], 2 in (1,2], none in (2,4].
	for _, v := range []float64{0.5, 0.5, 1.5, 1.5} {
		h.Observe(v)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %v, want 1 (rank 2 falls at the first bucket's upper bound)", q)
	}
	if q := h.Quantile(0.75); q != 1.5 {
		t.Fatalf("p75 = %v, want 1.5 (rank 3 interpolates halfway into (1,2])", q)
	}
	h.Observe(100) // overflow bucket
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("p100 = %v, want clamp to highest finite bound 4", q)
	}
	for name, q := range map[string]float64{
		"empty":    r.Histogram("test_q_empty", "", nil).Quantile(0.5),
		"nil":      (*Histogram)(nil).Quantile(0.5),
		"negative": h.Quantile(-0.1),
		"above":    h.Quantile(1.1),
		"nan":      h.Quantile(math.NaN()),
	} {
		if !math.IsNaN(q) {
			t.Fatalf("%s quantile = %v, want NaN", name, q)
		}
	}
}

// TestSLOEvaluate exercises ceiling and floor objectives across
// healthy, breached, and no-data states, with burn rates.
func TestSLOEvaluate(t *testing.T) {
	e := NewSLOEngine()
	vals := map[string]float64{
		"ceiling-ok":     0.05,
		"ceiling-breach": 0.2,
		"floor-ok":       0.95,
		"floor-breach":   0.5,
		"nodata":         math.NaN(),
	}
	e.Declare(
		Objective{Name: "ceiling-ok", Target: 0.1, SLI: func() float64 { return vals["ceiling-ok"] }},
		Objective{Name: "ceiling-breach", Target: 0.1, SLI: func() float64 { return vals["ceiling-breach"] }},
		Objective{Name: "floor-ok", Target: 0.9, Floor: true, SLI: func() float64 { return vals["floor-ok"] }},
		Objective{Name: "floor-breach", Target: 0.9, Floor: true, SLI: func() float64 { return vals["floor-breach"] }},
		Objective{Name: "nodata", Target: 0.1, SLI: func() float64 { return vals["nodata"] }},
	)
	byName := map[string]SLOStatus{}
	statuses := e.Evaluate()
	for i, st := range statuses {
		byName[st.Name] = st
		if i > 0 && statuses[i-1].Name > st.Name {
			t.Fatalf("Evaluate not sorted: %s before %s", statuses[i-1].Name, st.Name)
		}
	}
	checks := []struct {
		name   string
		status string
		kind   string
		burn   float64
	}{
		{"ceiling-ok", SLOHealthy, "ceiling", 0.5},
		{"ceiling-breach", SLOBreached, "ceiling", 2},
		{"floor-ok", SLOHealthy, "floor", 0.5},
		{"floor-breach", SLOBreached, "floor", 5},
		{"nodata", SLONoData, "ceiling", math.NaN()},
	}
	for _, c := range checks {
		st, ok := byName[c.name]
		if !ok {
			t.Fatalf("objective %s missing from Evaluate", c.name)
		}
		if st.Status != c.status || st.Kind != c.kind {
			t.Fatalf("%s: status/kind = %s/%s, want %s/%s", c.name, st.Status, st.Kind, c.status, c.kind)
		}
		if math.IsNaN(c.burn) != math.IsNaN(st.BurnRate) ||
			(!math.IsNaN(c.burn) && math.Abs(st.BurnRate-c.burn) > 1e-9) {
			t.Fatalf("%s: burn = %v, want %v", c.name, st.BurnRate, c.burn)
		}
	}
}

// TestSLOStatusJSONNonFinite checks the /slo JSON shape survives NaN
// and Inf indicator values: they serialize as null instead of failing
// the whole encode.
func TestSLOStatusJSONNonFinite(t *testing.T) {
	e := NewSLOEngine()
	e.Declare(
		Objective{Name: "nodata", Target: 0.1, SLI: func() float64 { return math.NaN() }},
		Objective{Name: "inf-burn", Target: 1, Floor: true, SLI: func() float64 { return 0.5 }},
		Objective{Name: "fine", Target: 0.1, SLI: func() float64 { return 0.05 }},
	)
	b, err := json.Marshal(e.Evaluate())
	if err != nil {
		t.Fatalf("marshal /slo statuses: %v", err)
	}
	var back []map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, st := range back {
		name := st["name"].(string)
		switch name {
		case "nodata":
			if st["value"] != nil || st["burn_rate"] != nil {
				t.Fatalf("nodata: value/burn must be null, got %v/%v", st["value"], st["burn_rate"])
			}
		case "inf-burn":
			if st["burn_rate"] != nil {
				t.Fatalf("inf-burn: infinite burn must be null, got %v", st["burn_rate"])
			}
		case "fine":
			if st["value"] != 0.05 {
				t.Fatalf("fine: value = %v, want 0.05", st["value"])
			}
		}
	}
}

// TestSLOInstrument registers the atlas_slo_* gauge series and checks
// the exported values track the objectives.
func TestSLOInstrument(t *testing.T) {
	e := NewSLOEngine()
	sli := 0.125
	e.Declare(Objective{Name: "obj", Target: 0.25, SLI: func() float64 { return sli }})
	reg := NewRegistry()
	e.Instrument(reg)

	read := func() map[string]float64 {
		out := map[string]float64{}
		for _, s := range reg.Snapshot() {
			if s.Labels["objective"] == "obj" {
				out[s.Name] = s.Value
			}
		}
		return out
	}
	got := read()
	if got["atlas_slo_value"] != 0.125 || got["atlas_slo_target"] != 0.25 ||
		got["atlas_slo_burn_rate"] != 0.5 || got["atlas_slo_healthy"] != 1 {
		t.Fatalf("instrumented series = %+v", got)
	}
	sli = 0.75 // now breached; GaugeFuncs must re-read at export time
	got = read()
	if got["atlas_slo_healthy"] != 0 || got["atlas_slo_burn_rate"] != 3 {
		t.Fatalf("post-breach series = %+v", got)
	}
}
