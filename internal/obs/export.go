package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MetricSeries is one exported metric series: a counter/gauge value or a
// histogram's buckets, with its resolved labels. The JSON shape is
// what GET /stats embeds under "metrics".
type MetricSeries struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// Snapshot returns every registered series in deterministic order
// (families by name, series by label set). Values are read atomically
// per series; the snapshot as a whole is not a cross-series atomic
// cut, which is fine for monitoring surfaces. Nil registry returns
// nil.
func (r *Registry) Snapshot() []MetricSeries {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []MetricSeries
	for _, fam := range r.sortedFamilies() {
		for _, s := range fam.sortedSeries() {
			snap := MetricSeries{Name: fam.name, Type: fam.typ, Labels: labelMap(s.labels)}
			switch {
			case s.fn != nil:
				snap.Value = s.fn()
			case s.counter != nil:
				snap.Value = float64(s.counter.Value())
			case s.gauge != nil:
				snap.Value = s.gauge.Value()
			case s.hist != nil:
				snap.Count = s.hist.Count()
				snap.Sum = s.hist.Sum()
				// The +Inf tail is omitted: encoding/json cannot
				// represent it, and Count already carries the total.
				cum := uint64(0)
				for i, bound := range s.hist.bounds {
					cum += s.hist.buckets[i].Load()
					snap.Buckets = append(snap.Buckets, Bucket{LE: bound, Count: cum})
				}
				snap.Value = float64(snap.Count)
			}
			out = append(out, snap)
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE block per
// family, histogram series expanded into cumulative _bucket{le=...}
// plus _sum and _count. Output order is deterministic. Nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, fam := range r.sortedFamilies() {
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, s := range fam.sortedSeries() {
			switch {
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", fam.name, renderLabels(s.labels), fmtFloat(s.fn()))
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, renderLabels(s.labels), s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", fam.name, renderLabels(s.labels), fmtFloat(s.gauge.Value()))
			case s.hist != nil:
				cum := uint64(0)
				for i := range s.hist.buckets {
					cum += s.hist.buckets[i].Load()
					le := "+Inf"
					if i < len(s.hist.bounds) {
						le = fmtFloat(s.hist.bounds[i])
					}
					withLE := append(append([]Label{}, s.labels...), Label{Key: "le", Value: le})
					fmt.Fprintf(&b, "%s_bucket%s %d\n", fam.name, renderLabels(withLE), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", fam.name, renderLabels(s.labels), fmtFloat(s.hist.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", fam.name, renderLabels(s.labels), s.hist.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (r *Registry) sortedFamilies() []*family {
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*series {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	return out
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
