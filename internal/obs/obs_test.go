package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounterIncrements hammers one counter from many
// goroutines and checks the total is exact — the -race CI job runs
// this to prove the increment path is lock-free and correct.
func TestConcurrentCounterIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestConcurrentHistogramObserve checks that concurrent observations
// keep count, sum, and bucket totals exactly consistent once writers
// quiesce.
func TestConcurrentHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	const workers, per = 8, 5000
	vals := []float64{0.001, 0.05, 0.5, 5}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(vals[(w+i)%len(vals)])
			}
		}(w)
	}
	wg.Wait()
	want := uint64(workers * per)
	if h.Count() != want {
		t.Fatalf("count = %d, want %d", h.Count(), want)
	}
	var bucketTotal uint64
	for i := range h.buckets {
		bucketTotal += h.buckets[i].Load()
	}
	if bucketTotal != want {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, want)
	}
	// Each value lands workers*per/len(vals) times; sum must match.
	wantSum := 0.0
	for _, v := range vals {
		wantSum += v * float64(workers*per/len(vals))
	}
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestConcurrentRegistration checks that racing registrations of the
// same series resolve to one shared handle.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	handles := make([]*Counter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			handles[w] = r.Counter("shared_total", "shared", L("site", "a"))
			handles[w].Inc()
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if handles[w] != handles[0] {
			t.Fatalf("registration %d returned a distinct handle", w)
		}
	}
	if got := handles[0].Value(); got != workers {
		t.Fatalf("shared counter = %d, want %d", got, workers)
	}
}

// TestSnapshotConsistency reads snapshots while writers are active
// (values must be monotone and never torn) and checks the final
// snapshot matches the exact totals.
func TestSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("snap_ops_total", "ops")
	g := r.Gauge("snap_depth", "depth")
	h := r.Histogram("snap_seconds", "timing", nil)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20000; i++ {
			c.Inc()
			g.Set(float64(i))
			h.Observe(0.001)
		}
		close(done)
	}()
	var last float64
	for {
		select {
		case <-done:
			wg.Wait()
			snap := r.Snapshot()
			byName := map[string]MetricSeries{}
			for _, s := range snap {
				byName[s.Name] = s
			}
			if v := byName["snap_ops_total"].Value; v != 20000 {
				t.Fatalf("final counter snapshot = %g, want 20000", v)
			}
			if v := byName["snap_depth"].Value; v != 19999 {
				t.Fatalf("final gauge snapshot = %g, want 19999", v)
			}
			if n := byName["snap_seconds"].Count; n != 20000 {
				t.Fatalf("final histogram count = %d, want 20000", n)
			}
			return
		default:
			for _, s := range r.Snapshot() {
				if s.Name != "snap_ops_total" {
					continue
				}
				if s.Value < last {
					t.Fatalf("counter snapshot went backwards: %g -> %g", last, s.Value)
				}
				last = s.Value
			}
		}
	}
}

// TestPrometheusExposition checks the text format: HELP/TYPE blocks,
// label rendering and escaping, cumulative histogram buckets with a
// +Inf tail, and deterministic ordering.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counter", L("site", `edge"1`)).Add(3)
	r.Gauge("a_util", "a gauge").Set(0.5)
	h := r.Histogram("c_seconds", "c histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("d_func", "collected", func() float64 { return 7 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# HELP a_util a gauge\n# TYPE a_util gauge\na_util 0.5\n",
		"# TYPE b_total counter\nb_total{site=\"edge\\\"1\"} 3\n",
		"c_seconds_bucket{le=\"0.1\"} 1\n",
		"c_seconds_bucket{le=\"1\"} 2\n",
		"c_seconds_bucket{le=\"+Inf\"} 3\n",
		"c_seconds_sum 5.55\n",
		"c_seconds_count 3\n",
		"d_func 7\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Families come out name-sorted, so a repeat render is identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Fatal("exposition output is not deterministic")
	}
}

// TestSnapshotJSONRoundTrip checks the snapshot is encoding/json
// clean, including histograms (whose +Inf bucket is elided).
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "j").Add(2)
	h := r.Histogram("j_seconds", "j", nil)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back []MetricSeries
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("round-trip series = %d, want 2", len(back))
	}
}

// TestNilSafety: every handle and registry method must be a no-op on
// nil receivers — uninstrumented subsystems call them unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("x", "x")
	h := r.Histogram("x_seconds", "x", nil)
	r.CounterFunc("x_fn", "x", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestTypeConflictPanics: re-registering a name under a different
// type is a programmer error and must fail loudly.
func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_total", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	r.Gauge("conflict_total", "g")
}
