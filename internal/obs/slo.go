package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
)

// This file is the flight recorder's judgement half: declarative
// service-level objectives evaluated on demand over live metric
// handles and recorded series, with SRE-style burn rates (how fast the
// error budget is being spent: 1.0 = exactly on target, >1 = burning).
// Objectives never feed back into decisions — like the rest of the
// package they observe, post-decision.

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation within the bucket that contains
// the target rank — the same estimate Prometheus histogram_quantile
// computes. Values landing in the +Inf overflow bucket clamp to the
// highest finite bound. Returns NaN when the histogram is nil or empty
// or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.buckets {
		prev := cum
		cum += h.buckets[i].Load()
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			// Overflow bucket: no finite upper bound to interpolate
			// toward; clamp to the largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		inBucket := cum - prev
		if inBucket == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(inBucket)
	}
	return h.bounds[len(h.bounds)-1]
}

// Objective is one declarative SLO: a named service-level indicator
// with a target it must stay under (ceiling) or over (floor).
type Objective struct {
	// Name identifies the objective in /slo and the atlas_slo_* series.
	Name string
	// Help is a one-line human description.
	Help string
	// Target is the threshold. With Floor=false the SLI must stay <=
	// Target (a ceiling: violation rates, p95 latency); with Floor=true
	// it must stay >= Target (a floor: placement ratio, availability).
	Target float64
	// Floor selects floor semantics (see Target).
	Floor bool
	// SLI reads the current indicator value. Must be safe to call from
	// any goroutine (the SLO engine evaluates at HTTP/export time).
	// Return NaN when no data exists yet.
	SLI func() float64
}

// SLO health states.
const (
	SLOHealthy  = "healthy"
	SLOBreached = "breached"
	SLONoData   = "no_data"
)

// SLOStatus is one objective's evaluation — the JSON shape GET /slo
// returns per objective.
type SLOStatus struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Target float64 `json:"target"`
	// Kind is "ceiling" (SLI must stay <= target) or "floor" (>=).
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
	// BurnRate is the error-budget burn: for ceilings value/target, for
	// floors (1-value)/(1-target). 1.0 means exactly on target; above 1
	// the objective is breached and the budget is burning.
	BurnRate float64 `json:"burn_rate"`
	Status   string  `json:"status"`
}

// MarshalJSON emits null for NaN and ±Inf indicator values —
// encoding/json rejects non-finite floats, and a no-data objective must
// still serialize.
func (s SLOStatus) MarshalJSON() ([]byte, error) {
	type alias SLOStatus
	return json.Marshal(struct {
		alias
		Value    any `json:"value"`
		BurnRate any `json:"burn_rate"`
	}{alias: alias(s), Value: finiteOrNull(s.Value), BurnRate: finiteOrNull(s.BurnRate)})
}

func finiteOrNull(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return v
}

// SLOEngine holds the declared objectives and evaluates them on
// demand. A nil *SLOEngine no-ops on every method.
type SLOEngine struct {
	mu         sync.Mutex
	objectives []Objective
}

// NewSLOEngine returns an engine with no objectives declared.
func NewSLOEngine() *SLOEngine { return &SLOEngine{} }

// Declare adds objectives. Safe to call concurrently with Evaluate.
func (e *SLOEngine) Declare(objs ...Objective) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.objectives = append(e.objectives, objs...)
}

func (e *SLOEngine) snapshot() []Objective {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Objective(nil), e.objectives...)
}

// burnRate computes the error-budget burn for value against a target.
func burnRate(value, target float64, floor bool) float64 {
	if math.IsNaN(value) {
		return math.NaN()
	}
	if floor {
		// Budget is the allowed shortfall below 1.0.
		if target >= 1 {
			if value >= 1 {
				return 1
			}
			return math.Inf(1)
		}
		return (1 - value) / (1 - target)
	}
	if target <= 0 {
		if value <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return value / target
}

func evaluate(o Objective) SLOStatus {
	v := math.NaN()
	if o.SLI != nil {
		v = o.SLI()
	}
	kind := "ceiling"
	if o.Floor {
		kind = "floor"
	}
	st := SLOStatus{
		Name:     o.Name,
		Help:     o.Help,
		Target:   o.Target,
		Kind:     kind,
		Value:    v,
		BurnRate: burnRate(v, o.Target, o.Floor),
	}
	switch {
	case math.IsNaN(v):
		st.Status = SLONoData
	case o.Floor && v < o.Target, !o.Floor && v > o.Target:
		st.Status = SLOBreached
	default:
		st.Status = SLOHealthy
	}
	return st
}

// Evaluate reads every objective's SLI once and returns the statuses
// sorted by name. Nil engine returns nil.
func (e *SLOEngine) Evaluate() []SLOStatus {
	if e == nil {
		return nil
	}
	objs := e.snapshot()
	out := make([]SLOStatus, 0, len(objs))
	for _, o := range objs {
		out = append(out, evaluate(o))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Instrument registers atlas_slo_* gauge series (value, target,
// burn_rate, healthy) for every currently declared objective, labeled
// by objective name and collected at export time. Call after Declare.
// No-op on a nil engine or registry.
func (e *SLOEngine) Instrument(reg *Registry) {
	if e == nil || reg == nil {
		return
	}
	for _, o := range e.snapshot() {
		o := o
		lbl := L("objective", o.Name)
		reg.GaugeFunc("atlas_slo_value",
			"Current service-level indicator value per objective.",
			func() float64 { return evaluate(o).Value }, lbl)
		reg.GaugeFunc("atlas_slo_target",
			"Declared target per objective.",
			func() float64 { return o.Target }, lbl)
		reg.GaugeFunc("atlas_slo_burn_rate",
			"Error-budget burn rate per objective (1.0 = on target).",
			func() float64 { return evaluate(o).BurnRate }, lbl)
		reg.GaugeFunc("atlas_slo_healthy",
			"1 when the objective is met, 0 when breached or no data.",
			func() float64 {
				if evaluate(o).Status == SLOHealthy {
					return 1
				}
				return 0
			}, lbl)
	}
}
